// GRO coalescer correctness.
//
// Unit half: synthetic IPv4/TCP frames driven straight through
// `gro_coalesce` — merge eligibility, PSH boundaries, the global-arrival
// adjacency rule, checksum verification (corrupt frames must never be
// folded into a merged segment), and byte-identical passthrough of
// ineligible traffic.
//
// Property half: an echo transfer with rx batching + GRO enabled delivers
// a byte-identical application stream to the legacy per-frame path,
// across seeds and across a §3.1 failover (the secondary's rewritten
// segments must still verify and coalesce correctly).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/checksum.hpp"
#include "failover_fixture.hpp"
#include "net/gro.hpp"

namespace tfo {
namespace {

using test::kEchoPort;
using test::run_until;

constexpr std::uint8_t kAck = 0x10;
constexpr std::uint8_t kPsh = 0x08;
constexpr std::uint8_t kFin = 0x01;

std::uint8_t* put16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xff);
  return p + 2;
}
std::uint8_t* put32(std::uint8_t* p, std::uint32_t v) {
  put16(p, static_cast<std::uint16_t>(v >> 16));
  put16(p + 2, static_cast<std::uint16_t>(v & 0xffff));
  return p + 4;
}

/// Crafts a checksum-correct IPv4/TCP frame (no options) carrying
/// `payload`, stamped with arrival index `arrival`.
net::RxFrame make_frame(std::size_t arrival, std::uint32_t seq,
                        const Bytes& payload, std::uint8_t flags = kAck,
                        std::uint32_t ack = 1000, std::uint16_t window = 65535,
                        std::uint16_t sport = 4000, std::uint16_t dport = 5000) {
  const std::size_t tcp_len = 20 + payload.size();
  const std::size_t tot_len = 20 + tcp_len;
  wire::PacketBuffer buf = wire::PacketBuffer::alloc(tot_len, 0);
  std::uint8_t* ip = buf.mutable_data();
  std::memset(ip, 0, tot_len);
  ip[0] = 0x45;
  put16(ip + 2, static_cast<std::uint16_t>(tot_len));
  ip[8] = 64;  // TTL
  ip[9] = 6;   // TCP
  put32(ip + 12, 0x0a000001);  // 10.0.0.1
  put32(ip + 16, 0x0a00000a);  // 10.0.0.10
  put16(ip + 10, inet_checksum(BytesView(ip, 20)));

  std::uint8_t* tcp = ip + 20;
  put16(tcp, sport);
  put16(tcp + 2, dport);
  put32(tcp + 4, seq);
  put32(tcp + 8, ack);
  tcp[12] = 0x50;  // data offset 5
  tcp[13] = flags;
  put16(tcp + 14, window);
  if (!payload.empty()) std::memcpy(tcp + 20, payload.data(), payload.size());
  std::uint32_t pseudo = 0;
  for (int off : {12, 14, 16, 18})
    pseudo += (ip[off] << 8) | ip[off + 1];
  pseudo += 6 + static_cast<std::uint32_t>(tcp_len);
  put16(tcp + 16, static_cast<std::uint16_t>(
                      ~ones_complement_sum(BytesView(tcp, tcp_len), pseudo) &
                      0xffff));

  net::RxFrame rx;
  rx.frame.dst = net::MacAddress::from_id(10);
  rx.frame.src = net::MacAddress::from_id(1);
  rx.frame.type = net::EtherType::kIpv4;
  rx.frame.payload = std::move(buf);
  rx.to_us = true;
  rx.seq = arrival;
  return rx;
}

std::vector<net::RxFrame> coalesce(std::vector<net::RxFrame> in,
                                   net::GroStats& stats,
                                   net::GroParams params = {}) {
  std::vector<net::RxFrame> out;
  net::gro_coalesce(params, std::move(in), out, stats);
  return out;
}

/// The TCP payload bytes of a frame (follows the no-options headers).
Bytes tcp_payload(const net::EthernetFrame& f) {
  const std::uint8_t* p = f.payload.data();
  const std::size_t tot = (p[2] << 8) | p[3];
  return Bytes(p + 40, p + tot);
}

bool checksums_verify(const net::EthernetFrame& f) {
  const std::uint8_t* p = f.payload.data();
  if (ones_complement_sum(BytesView(p, 20)) != 0xffff) return false;
  const std::size_t tcp_len = ((p[2] << 8) | p[3]) - 20u;
  std::uint32_t pseudo = 0;
  for (int off : {12, 14, 16, 18}) pseudo += (p[off] << 8) | p[off + 1];
  pseudo += 6 + static_cast<std::uint32_t>(tcp_len);
  return ones_complement_sum(BytesView(p + 20, tcp_len), pseudo) == 0xffff;
}

TEST(Gro, CoalescesAbuttingRunIntoOneVerifiedFrame) {
  const Bytes a = test::pattern_bytes(500, 1);
  const Bytes b = test::pattern_bytes(300, 2);
  const Bytes c = test::pattern_bytes(200, 3);
  net::GroStats stats;
  auto out = coalesce({make_frame(0, 1000, a), make_frame(1, 1500, b),
                       make_frame(2, 1800, c)},
                      stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.coalesced, 2u);
  EXPECT_EQ(stats.frames_in, 3u);
  EXPECT_EQ(stats.frames_out, 1u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_TRUE(checksums_verify(out[0].frame));
  Bytes merged = a;
  append(merged, b);
  append(merged, c);
  EXPECT_EQ(tcp_payload(out[0].frame), merged);
  // The merged header keeps the head's sequence number.
  const std::uint8_t* tcp = out[0].frame.payload.data() + 20;
  EXPECT_EQ((tcp[4] << 8 | tcp[5]), 0);
  EXPECT_EQ((tcp[6] << 8 | tcp[7]), 1000);
}

TEST(Gro, PshClosesTheRunButIsIncluded) {
  const Bytes a = test::pattern_bytes(100, 1);
  const Bytes b = test::pattern_bytes(100, 2);
  const Bytes c = test::pattern_bytes(100, 3);
  net::GroStats stats;
  auto out = coalesce({make_frame(0, 0, a), make_frame(1, 100, b, kAck | kPsh),
                       make_frame(2, 200, c)},
                      stats);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.coalesced, 1u);
  Bytes head = a;
  append(head, b);
  EXPECT_EQ(tcp_payload(out[0].frame), head);
  // PSH propagates to the merged header.
  EXPECT_NE(out[0].frame.payload.data()[20 + 13] & kPsh, 0);
  EXPECT_TRUE(checksums_verify(out[0].frame));
  EXPECT_EQ(tcp_payload(out[1].frame), c);
}

TEST(Gro, NonAdjacentArrivalsNeverMerge) {
  // TCP-contiguous but an intervening frame (arrival index 1, e.g. routed
  // to another lane) separates them: coalescing must not depend on which
  // lane saw the gap, so the run breaks.
  const Bytes a = test::pattern_bytes(100, 1);
  const Bytes b = test::pattern_bytes(100, 2);
  net::GroStats stats;
  auto out = coalesce({make_frame(0, 0, a), make_frame(2, 100, b)}, stats);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(tcp_payload(out[0].frame), a);
  EXPECT_EQ(tcp_payload(out[1].frame), b);
}

TEST(Gro, SequenceGapBreaksRun) {
  const Bytes a = test::pattern_bytes(100, 1);
  const Bytes b = test::pattern_bytes(100, 2);
  net::GroStats stats;
  auto out = coalesce({make_frame(0, 0, a), make_frame(1, 150, b)}, stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.coalesced, 0u);
}

TEST(Gro, DifferentFlowsDoNotMerge) {
  const Bytes a = test::pattern_bytes(100, 1);
  const Bytes b = test::pattern_bytes(100, 2);
  net::GroStats stats;
  auto out = coalesce({make_frame(0, 0, a, kAck, 1000, 65535, 4000, 5000),
                       make_frame(1, 100, b, kAck, 1000, 65535, 4001, 5000)},
                      stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.coalesced, 0u);
}

TEST(Gro, CorruptFrameIsNeverFoldedIn) {
  const Bytes a = test::pattern_bytes(100, 1);
  const Bytes b = test::pattern_bytes(100, 2);
  const Bytes c = test::pattern_bytes(100, 3);
  std::vector<net::RxFrame> in = {make_frame(0, 0, a), make_frame(1, 100, b),
                                  make_frame(2, 200, c)};
  // Flip a payload byte of the middle frame without fixing its checksum.
  in[1].frame.payload.mutable_data()[45] ^= 0xff;
  const Bytes corrupted_wire(in[1].frame.payload.data(),
                             in[1].frame.payload.data() + in[1].frame.payload.size());
  net::GroStats stats;
  auto out = coalesce(std::move(in), stats);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.bad_checksum, 1u);
  // The corrupt frame passes through byte-identical: corruption is the
  // TCP layer's to detect and drop, never GRO's to launder.
  const Bytes through(out[1].frame.payload.data(),
                      out[1].frame.payload.data() + out[1].frame.payload.size());
  EXPECT_EQ(through, corrupted_wire);
}

TEST(Gro, PureAcksAndNonTcpPassThrough) {
  net::GroStats stats;
  net::RxFrame pure_ack = make_frame(0, 0, {});
  net::RxFrame arp;
  arp.frame.type = net::EtherType::kArp;
  arp.frame.payload = wire::PacketBuffer::alloc(28, 0);
  arp.seq = 1;
  auto out = coalesce([&] {
    std::vector<net::RxFrame> v;
    v.push_back(std::move(pure_ack));
    v.push_back(std::move(arp));
    return v;
  }(), stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.bad_checksum, 0u);
}

TEST(Gro, FinBearingSegmentsPassThrough) {
  const Bytes a = test::pattern_bytes(100, 1);
  const Bytes b = test::pattern_bytes(100, 2);
  net::GroStats stats;
  auto out = coalesce(
      {make_frame(0, 0, a), make_frame(1, 100, b, kAck | kPsh | kFin)}, stats);
  // FIN is not a mergeable flag set: the segment must survive unmodified
  // so connection teardown sequencing is untouched by batching.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_NE(out[1].frame.payload.data()[20 + 13] & kFin, 0);
}

TEST(Gro, MaxMergedCapsRunLength) {
  std::vector<net::RxFrame> in;
  std::uint32_t seq = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    in.push_back(make_frame(i, seq, test::pattern_bytes(100, i)));
    seq += 100;
  }
  net::GroStats stats;
  net::GroParams params;
  params.max_merged = 4;
  auto out = coalesce(std::move(in), stats, params);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.coalesced, 6u);
  EXPECT_EQ(tcp_payload(out[0].frame).size(), 400u);
  EXPECT_EQ(tcp_payload(out[1].frame).size(), 400u);
  EXPECT_TRUE(checksums_verify(out[0].frame));
  EXPECT_TRUE(checksums_verify(out[1].frame));
}

// ------------------------------------------------------------- property

apps::LanParams batching_params(std::uint64_t seed, bool batching) {
  apps::LanParams lp;
  lp.seed = seed;
  lp.tcp.max_rto = seconds(5);
  if (batching) {
    lp.nic.rx_batch_max = 8;
    lp.nic.rx_batch_window = microseconds(150);
  }
  return lp;
}

/// Runs a steady-state echo transfer and returns the received stream.
Bytes run_steady(std::uint64_t seed, bool batching, std::uint64_t* coalesced) {
  auto r = test::make_replicated_lan(batching_params(seed, batching));
  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 120000, 8192);
  EXPECT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(300)));
  EXPECT_TRUE(d.verify());
  if (coalesced != nullptr)
    *coalesced = r->client().nic().gro_stats().coalesced +
                 r->primary().nic().gro_stats().coalesced;
  return d.received();
}

TEST(GroProperty, BatchedStreamIsByteIdenticalAcrossSeeds) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    std::uint64_t coalesced = 0;
    const Bytes plain = run_steady(seed, false, nullptr);
    const Bytes batched = run_steady(seed, true, &coalesced);
    EXPECT_EQ(plain, batched) << "seed " << seed;
    // The property run must actually exercise the merge path.
    EXPECT_GT(coalesced, 0u) << "seed " << seed;
  }
}

TEST(GroProperty, FailoverRewritePathSurvivesCoalescing) {
  // Mid-transfer primary crash: the secondary's §3.1 header-rewritten
  // segments flow through the same batch+GRO path and must still verify,
  // coalesce, and complete the stream intact.
  for (std::uint64_t seed : {21u, 22u}) {
    auto r = test::make_replicated_lan(batching_params(seed, true));
    test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 90000,
                       8192);
    ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 30000; },
                          seconds(300)))
        << "seed " << seed;
    r->group->crash_primary();
    ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(600)))
        << "seed " << seed;
    EXPECT_TRUE(d.verify()) << "seed " << seed;
  }
}

TEST(GroProperty, BatchingDeliversFewerStackInvocations) {
  // The point of the exercise: one batch, one processing charge. The
  // batched run must hand the stack strictly fewer (bigger) frames.
  auto run = [](bool batching) {
    auto r = test::make_replicated_lan(batching_params(31, batching));
    test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 120000,
                       8192);
    EXPECT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(300)));
    EXPECT_TRUE(d.verify());
    return r->client().nic().gro_stats();
  };
  const net::GroStats plain = run(false);
  const net::GroStats batched = run(true);
  EXPECT_EQ(plain.frames_in, 0u);  // legacy path never touches GRO
  EXPECT_GT(batched.frames_in, 0u);
  EXPECT_LT(batched.frames_out, batched.frames_in);
}

}  // namespace
}  // namespace tfo
