// §8 connection-termination corner cases at system level: stray FIN
// retransmissions after the bridge deleted its per-connection state,
// tombstone lifecycle, closes racing failovers — plus end-to-end replica
// divergence detection with genuinely non-deterministic applications.
#include <gtest/gtest.h>

#include "apps/trace.hpp"
#include "failover_fixture.hpp"
#include "tcp/segment.hpp"

namespace tfo::core {
namespace {

using test::kEchoPort;
using test::make_replicated_lan;
using test::run_until;

/// Runs a complete echo session through close, so the bridge tombstones
/// the connection. Returns the connection key (client view).
tcp::ConnKey run_full_session(test::ReplicatedLan& r) {
  test::EchoDriver d(r.client(), r.primary().address(), kEchoPort, 2000, 500);
  EXPECT_TRUE(run_until(r.sim(), [&] { return d.done(); }, seconds(60)));
  const tcp::ConnKey key{r.primary().address(), kEchoPort, r.client().address(),
                         d.connection().key().local_port};
  d.connection().close();
  EXPECT_TRUE(run_until(r.sim(), [&] {
    return d.connection().state() == tcp::TcpState::kClosed &&
           r.group->primary_bridge().connection_count() == 0;
  }, seconds(60)));
  return key;
}

TEST(Teardown, BridgeTombstonesAfterFullClose) {
  auto r = make_replicated_lan();
  run_full_session(*r);
  EXPECT_EQ(r->group->primary_bridge().connection_count(), 0u);
  EXPECT_GE(r->group->primary_bridge().tombstone_count(), 1u);
}

TEST(Teardown, TombstoneExpiresEventually) {
  auto r = make_replicated_lan();
  run_full_session(*r);
  ASSERT_GE(r->group->primary_bridge().tombstone_count(), 1u);
  // Tombstones live 4*MSL (2s at the default 500ms MSL).
  r->sim().run_for(seconds(10));
  EXPECT_EQ(r->group->primary_bridge().tombstone_count(), 0u);
}

TEST(Teardown, StrayClientFinIsAckedNotReset) {
  // §8: "When the primary server bridge receives a FIN sent by the client
  // C after it removed all internal data structures associated with the
  // connection, it creates an ACK and sends the ACK back to C."
  auto r = make_replicated_lan();
  const tcp::ConnKey key = run_full_session(*r);

  apps::FrameTracer at_client(r->sim(), r->client().nic());
  // Craft the client's FIN retransmission (its LAST segment, re-sent as
  // if the final ACK had been lost). Sequence numbers need not be exact:
  // the bridge answers from the segment itself.
  tcp::TcpSegment fin;
  fin.src_port = key.remote_port;  // the client's port
  fin.dst_port = key.local_port;
  fin.seq = 123456;
  fin.ack = 654321;
  fin.flags = tcp::Flags::kFin | tcp::Flags::kAck;
  fin.window = 65535;
  r->client().ip().send(ip::Proto::kTcp, r->client().address(),
                        r->primary().address(),
                        fin.serialize(r->client().address(), r->primary().address()));
  r->sim().run_for(milliseconds(50));

  // The client got a pure ACK covering the FIN, and no RST.
  EXPECT_GE(at_client.count([&](const apps::TraceRecord& rec) {
    return rec.has_tcp && rec.src_ip == r->primary().address() &&
           (rec.flags & tcp::Flags::kAck) && !(rec.flags & tcp::Flags::kRst) &&
           rec.ack == seq_add(123456, 1);
  }), 1u);
  EXPECT_EQ(at_client.count([](const apps::TraceRecord& rec) {
    return rec.has_tcp && (rec.flags & tcp::Flags::kRst);
  }), 0u);
  EXPECT_GE(r->group->primary_bridge().stray_fin_acks(), 1u);
}

TEST(Teardown, StraySecondaryFinIsAckedBackToSecondary) {
  // §8, other direction: the secondary's TCP retransmits its FIN after
  // the bridge tore down; the bridge manufactures the client's ACK.
  auto r = make_replicated_lan();
  const tcp::ConnKey key = run_full_session(*r);

  apps::FrameTracer at_secondary(r->sim(), r->secondary().nic());
  tcp::TcpSegment fin;
  fin.src_port = key.local_port;   // server port
  fin.dst_port = key.remote_port;  // client port
  fin.seq = 99999;
  fin.ack = 11111;
  fin.flags = tcp::Flags::kFin | tcp::Flags::kAck;
  fin.orig_dst = key.remote_ip;  // diverted-segment marking
  r->secondary().ip().send(
      ip::Proto::kTcp, r->secondary().address(), r->primary().address(),
      fin.serialize(r->secondary().address(), r->primary().address()));
  r->sim().run_for(milliseconds(50));

  // The secondary received an ACK that *appears to come from the client*.
  EXPECT_GE(at_secondary.count([&](const apps::TraceRecord& rec) {
    return rec.has_tcp && rec.src_ip == key.remote_ip &&
           rec.dst_ip == r->secondary().address() &&
           (rec.flags & tcp::Flags::kAck) && rec.ack == seq_add(99999, 1);
  }), 1u);
}

TEST(Teardown, StrayFinReplySequenceComesFromSendersAck) {
  // The manufactured ACK is unsolicited, so its sequence number must sit
  // in the FIN sender's receive window. The only reconstructable
  // in-window value is the stray FIN's own ACK field (the sender's
  // RCV.NXT) — a seq=0 fabrication would be silently discarded by a
  // conforming peer.
  auto r = make_replicated_lan();
  const tcp::ConnKey key = run_full_session(*r);

  apps::FrameTracer at_client(r->sim(), r->client().nic());
  tcp::TcpSegment fin;
  fin.src_port = key.remote_port;
  fin.dst_port = key.local_port;
  fin.seq = 123456;
  fin.ack = 654321;
  fin.flags = tcp::Flags::kFin | tcp::Flags::kAck;
  fin.window = 65535;
  r->client().ip().send(ip::Proto::kTcp, r->client().address(),
                        r->primary().address(),
                        fin.serialize(r->client().address(), r->primary().address()));
  r->sim().run_for(milliseconds(50));

  EXPECT_GE(at_client.count([&](const apps::TraceRecord& rec) {
    return rec.has_tcp && rec.src_ip == r->primary().address() &&
           (rec.flags & tcp::Flags::kAck) && rec.seq == 654321 &&
           rec.ack == seq_add(123456, 1);
  }), 1u);
}

TEST(Teardown, StrayClientFinWithoutAckIsSuppressed) {
  // A stray FIN with no ACK flag gives the bridge nothing to anchor an
  // in-window reply on: it must stay silent (no fabricated seq=0 ACK,
  // and certainly no RST) and count the suppression.
  auto r = make_replicated_lan();
  const tcp::ConnKey key = run_full_session(*r);

  apps::FrameTracer at_client(r->sim(), r->client().nic());
  tcp::TcpSegment fin;
  fin.src_port = key.remote_port;
  fin.dst_port = key.local_port;
  fin.seq = 123456;
  fin.flags = tcp::Flags::kFin;  // no ACK: nothing usable for a reply
  fin.window = 65535;
  r->client().ip().send(ip::Proto::kTcp, r->client().address(),
                        r->primary().address(),
                        fin.serialize(r->client().address(), r->primary().address()));
  r->sim().run_for(milliseconds(50));

  EXPECT_EQ(at_client.count([&](const apps::TraceRecord& rec) {
    return rec.has_tcp && rec.src_ip == r->primary().address() &&
           rec.dst_port == key.remote_port;
  }), 0u);
  EXPECT_GE(r->primary().obs().registry.counter_value("bridge.stray_fin_suppressed"),
            1u);
  EXPECT_EQ(r->group->primary_bridge().stray_fin_acks(), 0u);
}

TEST(Teardown, StraySecondaryFinWithoutAckIsSuppressed) {
  // Same rule on the diverted path: the secondary's FIN retransmission
  // without an ACK field gets no manufactured reply.
  auto r = make_replicated_lan();
  const tcp::ConnKey key = run_full_session(*r);

  apps::FrameTracer at_secondary(r->sim(), r->secondary().nic());
  tcp::TcpSegment fin;
  fin.src_port = key.local_port;   // server port
  fin.dst_port = key.remote_port;  // client port
  fin.seq = 99999;
  fin.flags = tcp::Flags::kFin;  // no ACK
  fin.orig_dst = key.remote_ip;
  r->secondary().ip().send(
      ip::Proto::kTcp, r->secondary().address(), r->primary().address(),
      fin.serialize(r->secondary().address(), r->primary().address()));
  r->sim().run_for(milliseconds(50));

  EXPECT_EQ(at_secondary.count([&](const apps::TraceRecord& rec) {
    return rec.has_tcp && rec.dst_ip == r->secondary().address() &&
           rec.dst_port == key.local_port;
  }), 0u);
  EXPECT_GE(r->primary().obs().registry.counter_value("bridge.stray_fin_suppressed"),
            1u);
}

TEST(Teardown, CloseRacingPrimaryCrashStillCompletes) {
  auto r = make_replicated_lan();
  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 4000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(60)));
  // Close and crash at the same instant: the FIN handshake must finish
  // against the surviving replica.
  d.connection().close();
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return d.connection().state() == tcp::TcpState::kClosed;
  }, seconds(120)));
  EXPECT_EQ(d.close_reason(), tcp::CloseReason::kGraceful);
}

TEST(Teardown, CloseRacingSecondaryCrashStillCompletes) {
  auto r = make_replicated_lan();
  test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 4000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(60)));
  d.connection().close();
  r->group->crash_secondary();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return d.connection().state() == tcp::TcpState::kClosed;
  }, seconds(120)));
  EXPECT_EQ(d.close_reason(), tcp::CloseReason::kGraceful);
}

TEST(Teardown, ManySequentialSessionsLeaveNoResidue) {
  auto r = make_replicated_lan();
  for (int i = 0; i < 10; ++i) {
    test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 1000, 500);
    ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(60))) << i;
    d.connection().close();
    ASSERT_TRUE(run_until(r->sim(), [&] {
      return d.connection().state() == tcp::TcpState::kClosed;
    }, seconds(60))) << i;
  }
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->group->primary_bridge().connection_count() == 0;
  }, seconds(30)));
  // All server-side TCP state eventually drains (TIME_WAIT etc.).
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->primary().tcp().connection_count() == 0 &&
           r->secondary().tcp().connection_count() == 0;
  }, seconds(60)));
}

// ------------------------------------------------------------ divergence

/// A deliberately NON-deterministic server: replies include a per-host
/// tag, so the replicas' streams differ — the failure mode the paper
/// excludes by assumption and this implementation detects.
class TaggedEchoServer {
 public:
  TaggedEchoServer(tcp::TcpLayer& tcp, std::uint16_t port, std::string tag)
      : tag_(std::move(tag)) {
    tcp.listen(port, [this](std::shared_ptr<tcp::Connection> c) {
      auto* raw = c.get();
      conns_[raw] = c;
      raw->on_readable = [this, raw] {
        Bytes data;
        raw->recv(data);
        Bytes reply = to_bytes(tag_);
        append(reply, data);
        raw->send(std::move(reply));
      };
      raw->on_closed = [this, raw](tcp::CloseReason) { conns_.erase(raw); };
    });
  }

 private:
  std::string tag_;
  std::unordered_map<tcp::Connection*, std::shared_ptr<tcp::Connection>> conns_;
};

TEST(Divergence, NonDeterministicRepliesAreDetectedAndReset) {
  auto r = make_replicated_lan({}, {}, /*with_echo=*/false);
  TaggedEchoServer bad_p(r->primary().tcp(), kEchoPort, "P!");
  TaggedEchoServer bad_s(r->secondary().tcp(), kEchoPort, "S!");

  auto conn = r->client().tcp().connect(r->primary().address(), kEchoPort,
                                        {.nodelay = true});
  bool reset = false;
  conn->on_closed = [&](tcp::CloseReason reason) {
    reset = (reason == tcp::CloseReason::kReset);
  };
  conn->on_established = [&] { conn->send(to_bytes("which replica am I?")); };
  ASSERT_TRUE(run_until(r->sim(), [&] { return reset; }, seconds(60)));
  EXPECT_EQ(r->group->primary_bridge().divergences(), 1u);
  // The client was reset — *never* given a corrupted byte stream.
  EXPECT_EQ(conn->bytes_received_total(), 0u);
}

TEST(Divergence, DifferentReplyLengthsDetectedAtFinMismatch) {
  // Identical prefix, one replica appends a tail, both close after the
  // reply. Byte comparison alone cannot flag a pure length difference —
  // the divergent tail simply never matches — but the replicas' FIN
  // positions disagree, and that is detected.
  auto r = make_replicated_lan({}, {}, /*with_echo=*/false);
  class OneShotServer {
   public:
    OneShotServer(tcp::TcpLayer& tcp, std::uint16_t port, std::string suffix)
        : suffix_(std::move(suffix)) {
      tcp.listen(port, [this](std::shared_ptr<tcp::Connection> c) {
        auto* raw = c.get();
        conns_[raw] = c;
        raw->on_readable = [this, raw] {
          Bytes data;
          raw->recv(data);
          append(data, to_bytes(suffix_));
          raw->send(std::move(data));
          raw->close();  // reply length differences surface as FIN offsets
        };
        raw->on_closed = [this, raw](tcp::CloseReason) { conns_.erase(raw); };
      });
    }
   private:
    std::string suffix_;
    std::unordered_map<tcp::Connection*, std::shared_ptr<tcp::Connection>> conns_;
  };
  OneShotServer bad_p(r->primary().tcp(), kEchoPort, "");
  OneShotServer bad_s(r->secondary().tcp(), kEchoPort, "-tail");

  auto conn = r->client().tcp().connect(r->primary().address(), kEchoPort,
                                        {.nodelay = true});
  conn->on_established = [&] { conn->send(to_bytes("abc")); };
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->group->primary_bridge().divergences() > 0;
  }, seconds(60)));
  EXPECT_GE(r->group->primary_bridge().divergences(), 1u);
}

TEST(Divergence, ResetCarriesInWindowSequence) {
  // The divergence RST is unsolicited, so RFC 793 requires its sequence
  // number to be the client-facing SND.NXT — the client silently discards
  // out-of-window resets (the simulated client enforces this), so a
  // seq=0 RST would leave it hanging until its own timers give up.
  auto r = make_replicated_lan({}, {}, /*with_echo=*/false);
  TaggedEchoServer bad_p(r->primary().tcp(), kEchoPort, "P!");
  TaggedEchoServer bad_s(r->secondary().tcp(), kEchoPort, "S!");

  apps::FrameTracer at_client(r->sim(), r->client().nic());
  apps::FrameTracer at_primary(r->sim(), r->primary().nic());
  auto conn = r->client().tcp().connect(r->primary().address(), kEchoPort,
                                        {.nodelay = true});
  bool reset = false;
  conn->on_closed = [&](tcp::CloseReason reason) {
    reset = (reason == tcp::CloseReason::kReset);
  };
  conn->on_established = [&] { conn->send(to_bytes("which replica am I?")); };
  ASSERT_TRUE(run_until(r->sim(), [&] { return reset; }, seconds(60)));

  // The client's outgoing ACK field is its RCV.NXT in wire terms — the
  // exact value an in-window unsolicited segment must carry. The client
  // delivered no data, so every post-handshake ACK it sent names the
  // same value.
  std::uint32_t client_rcv_nxt = 0;
  bool have_ack = false;
  for (const auto& rec : at_primary.records()) {
    if (rec.has_tcp && rec.src_ip == r->client().address() &&
        rec.dst_port == kEchoPort && (rec.flags & tcp::Flags::kAck)) {
      client_rcv_nxt = rec.ack;
      have_ack = true;
    }
  }
  ASSERT_TRUE(have_ack);

  std::size_t rsts = 0;
  for (const auto& rec : at_client.records()) {
    if (rec.has_tcp && rec.dst_ip == r->client().address() &&
        (rec.flags & tcp::Flags::kRst)) {
      ++rsts;
      EXPECT_EQ(rec.seq, client_rcv_nxt) << "RST outside the client's window";
    }
  }
  EXPECT_GE(rsts, 1u);
  // The timeline records the divergence for the post-mortem.
  EXPECT_GE(r->primary().obs().timeline.filter(obs::EventKind::kDivergence).size(),
            1u);
}

TEST(Divergence, DeterministicReplicasNeverTrigger) {
  auto r = make_replicated_lan();
  for (int i = 0; i < 3; ++i) {
    test::EchoDriver d(r->client(), r->primary().address(), kEchoPort, 30000, 1500);
    ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(120)));
    EXPECT_TRUE(d.verify());
  }
  EXPECT_EQ(r->group->primary_bridge().divergences(), 0u);
}

}  // namespace
}  // namespace tfo::core
