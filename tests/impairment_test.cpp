// Unit tests for the impairment engine (net/impairment.hpp) and for the
// frame-lifetime rules the media must uphold while copies are in flight:
// deliveries to NICs detached or destroyed mid-pass, point-to-point
// endpoints destroyed before arrival, and stale per-port transmit state.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/frame.hpp"
#include "net/impairment.hpp"
#include "net/medium.hpp"
#include "net/nic.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace tfo::net {
namespace {

EthernetFrame frame_to(const Nic& dst, std::size_t len, std::uint8_t fill = 0xab) {
  EthernetFrame f;
  f.dst = dst.mac();
  f.payload = Bytes(len, fill);
  return f;
}

std::unique_ptr<Nic> quick_nic(sim::Simulator& sim, const std::string& name,
                               std::uint32_t id) {
  NicParams np;
  np.rx_processing = 0;
  return std::make_unique<Nic>(sim, name, MacAddress::from_id(id), np);
}

/// A representative frame for direct plan() probes.
const EthernetFrame& probe() {
  static const EthernetFrame f = [] {
    EthernetFrame p;
    p.payload = Bytes(64, 0x42);
    return p;
  }();
  return f;
}

// ------------------------------------------------------------ engine

TEST(ImpairmentEngine, DisabledEngineIsUntrackedPassthrough) {
  sim::Simulator sim;
  auto a = quick_nic(sim, "a", 1);
  Impairment eng;
  EXPECT_FALSE(eng.enabled());
  auto plan = eng.plan(nullptr, *a, probe());
  ASSERT_EQ(plan.copies.size(), 1u);
  EXPECT_FALSE(plan.tracked);
  EXPECT_EQ(plan.copies[0].extra_delay, 0);
  EXPECT_FALSE(plan.copies[0].corrupted);
  EXPECT_EQ(eng.counters().offered, 0u);  // untracked: not even offered
}

TEST(ImpairmentEngine, SameSeedSamePlanSequence) {
  sim::Simulator sim;
  auto a = quick_nic(sim, "a", 1);
  ImpairmentParams p;
  p.loss = 0.2;
  p.duplicate = 0.2;
  p.reorder = 0.3;
  p.corrupt = 0.1;
  p.seed = 1234;
  Impairment e1(p), e2(p);
  for (int i = 0; i < 500; ++i) {
    auto p1 = e1.plan(nullptr, *a, probe());
    auto p2 = e2.plan(nullptr, *a, probe());
    ASSERT_EQ(p1.copies.size(), p2.copies.size()) << "diverged at draw " << i;
    for (std::size_t k = 0; k < p1.copies.size(); ++k) {
      EXPECT_EQ(p1.copies[k].extra_delay, p2.copies[k].extra_delay);
      EXPECT_EQ(p1.copies[k].corrupted, p2.copies[k].corrupted);
    }
  }
  EXPECT_EQ(e1.counters().dropped, e2.counters().dropped);
}

TEST(ImpairmentEngine, DifferentSeedsDiverge) {
  sim::Simulator sim;
  auto a = quick_nic(sim, "a", 1);
  ImpairmentParams p;
  p.loss = 0.5;
  p.seed = 1;
  Impairment e1(p);
  p.seed = 2;
  Impairment e2(p);
  for (int i = 0; i < 200; ++i) {
    e1.plan(nullptr, *a, probe());
    e2.plan(nullptr, *a, probe());
  }
  EXPECT_NE(e1.counters().dropped, e2.counters().dropped);
}

TEST(ImpairmentEngine, GilbertElliottLossComesInBursts) {
  sim::Simulator sim;
  auto a = quick_nic(sim, "a", 1);
  // Bad state loses everything, good state nothing: every drop-run length
  // is a bad-state sojourn, geometrically distributed with mean 1/0.25 = 4.
  ImpairmentParams p;
  p.gilbert.p_enter_bad = 0.05;
  p.gilbert.p_exit_bad = 0.25;
  p.gilbert.loss_good = 0.0;
  p.gilbert.loss_bad = 1.0;
  p.seed = 99;
  Impairment eng(p);
  int longest_run = 0, run = 0, drops = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const bool dropped = eng.plan(nullptr, *a, probe()).copies.empty();
    if (dropped) {
      ++drops;
      longest_run = std::max(longest_run, ++run);
    } else {
      run = 0;
    }
  }
  // Uniform loss at the same average rate would make an 8-run astronomically
  // rare; the two-state chain produces them readily.
  EXPECT_GE(longest_run, 8);
  // Average rate is p_enter/(p_enter+p_exit) = 1/6; accept a wide band.
  EXPECT_GT(drops, n / 12);
  EXPECT_LT(drops, n / 3);
  EXPECT_EQ(eng.counters().dropped, static_cast<std::uint64_t>(drops));
}

TEST(ImpairmentEngine, ConservationHoldsUnderMixedImpairments) {
  sim::Simulator sim;
  auto a = quick_nic(sim, "a", 1);
  ImpairmentParams p;
  p.loss = 0.1;
  p.gilbert = {0.02, 0.3, 0.0, 0.9};
  p.duplicate = 0.2;
  p.reorder = 0.3;
  p.corrupt = 0.05;
  p.seed = 7;
  Impairment eng(p);
  for (int i = 0; i < 2000; ++i) {
    auto plan = eng.plan(nullptr, *a, probe());
    ASSERT_TRUE(plan.tracked);
    // The medium settles every surviving copy one way or the other.
    for (std::size_t k = 0; k < plan.copies.size(); ++k) {
      if (k % 2 == 0) eng.note_delivered();
      else eng.note_detached();
    }
  }
  const auto c = eng.counters();
  EXPECT_EQ(c.offered, 2000u);
  EXPECT_GT(c.dropped, 0u);
  EXPECT_GT(c.duplicated, 0u);
  EXPECT_GT(c.reordered, 0u);
  EXPECT_GT(c.corrupted, 0u);
  EXPECT_TRUE(eng.conserved());
  EXPECT_EQ(c.offered + c.duplicated, c.delivered + c.dropped + c.detached);
}

TEST(ImpairmentEngine, RegistryMirrorsInternalCounters) {
  sim::Simulator sim;
  auto a = quick_nic(sim, "a", 1);
  ImpairmentParams p;
  p.loss = 0.3;
  p.duplicate = 0.3;
  p.seed = 21;
  Impairment eng(p);
  // Pre-bind activity must be back-filled at bind time.
  for (int i = 0; i < 50; ++i) {
    auto plan = eng.plan(nullptr, *a, probe());
    for (std::size_t k = 0; k < plan.copies.size(); ++k) eng.note_delivered();
  }
  obs::Registry reg;
  eng.bind_registry(reg);
  for (int i = 0; i < 50; ++i) {
    auto plan = eng.plan(nullptr, *a, probe());
    for (std::size_t k = 0; k < plan.copies.size(); ++k) eng.note_delivered();
  }
  const auto c = eng.counters();
  EXPECT_EQ(reg.counter_value("net.impairment.offered"), c.offered);
  EXPECT_EQ(reg.counter_value("net.impairment.dropped"), c.dropped);
  EXPECT_EQ(reg.counter_value("net.impairment.duplicated"), c.duplicated);
  EXPECT_EQ(reg.counter_value("net.impairment.delivered"), c.delivered);
  EXPECT_EQ(reg.counter_value("net.impairment.detached"), c.detached);
  // The registry view satisfies the same conservation identity.
  EXPECT_EQ(reg.counter_value("net.impairment.offered") +
                reg.counter_value("net.impairment.duplicated"),
            reg.counter_value("net.impairment.delivered") +
                reg.counter_value("net.impairment.dropped") +
                reg.counter_value("net.impairment.detached"));
}

TEST(ImpairmentEngine, ConfigurePreservesCountersAndReseeds) {
  sim::Simulator sim;
  auto a = quick_nic(sim, "a", 1);
  ImpairmentParams p;
  p.loss = 0.5;
  p.seed = 5;
  Impairment eng(p);
  for (int i = 0; i < 100; ++i) {
    auto plan = eng.plan(nullptr, *a, probe());
    for (std::size_t k = 0; k < plan.copies.size(); ++k) eng.note_delivered();
  }
  const auto before = eng.counters();
  ASSERT_GT(before.dropped, 0u);
  // Swap loss for guaranteed duplication mid-run: counters carry over.
  p.loss = 0.0;
  p.duplicate = 1.0;
  eng.configure(p);
  for (int i = 0; i < 100; ++i) {
    auto plan = eng.plan(nullptr, *a, probe());
    ASSERT_EQ(plan.copies.size(), 2u);
    eng.note_delivered();
    eng.note_delivered();
  }
  const auto after = eng.counters();
  EXPECT_EQ(after.dropped, before.dropped);  // preserved, no new drops
  EXPECT_EQ(after.offered, before.offered + 100);
  EXPECT_EQ(after.duplicated, 100u);
  EXPECT_TRUE(eng.conserved());

  // Reconfiguring to an all-zero profile disables the pipeline entirely:
  // plans go back to untracked passthrough and counters freeze.
  eng.configure({});
  auto plan = eng.plan(nullptr, *a, probe());
  EXPECT_FALSE(plan.tracked);
  EXPECT_EQ(eng.counters().offered, after.offered);
  EXPECT_TRUE(eng.conserved());
}

TEST(ImpairmentEngine, CorruptFrameAlwaysDiffersAndKeepsLength) {
  sim::Simulator sim;
  ImpairmentParams p;
  p.corrupt = 1.0;
  p.corrupt_max_bytes = 3;
  p.seed = 3;
  Impairment eng(p);
  EthernetFrame f;
  f.payload = Bytes(200, 0x55);
  for (int i = 0; i < 100; ++i) {
    EthernetFrame c = eng.corrupt_frame(f);
    ASSERT_EQ(c.payload.size(), f.payload.size());
    EXPECT_NE(c.payload, f.payload) << "corrupt_frame produced a no-op copy";
    int diffs = 0;
    for (std::size_t k = 0; k < c.payload.size(); ++k) {
      if (c.payload[k] != f.payload[k]) ++diffs;
    }
    EXPECT_LE(diffs, 3);
  }
}

TEST(ImpairmentEngine, TargetScopesImpairmentsToMatchingDeliveries) {
  sim::Simulator sim;
  auto a = quick_nic(sim, "a", 1);
  auto b = quick_nic(sim, "b", 2);
  ImpairmentParams p;
  p.loss = 1.0;
  p.seed = 8;
  Impairment eng(p);
  eng.set_target([](const Nic*, const Nic& rx, const EthernetFrame&) {
    return rx.name() == "a";
  });
  EXPECT_TRUE(eng.plan(nullptr, *a, probe()).copies.empty());   // targeted: lost
  auto plan_b = eng.plan(nullptr, *b, probe());                 // out of scope
  ASSERT_EQ(plan_b.copies.size(), 1u);
  EXPECT_FALSE(plan_b.tracked);
  EXPECT_EQ(eng.counters().offered, 1u);  // only the targeted delivery counts
}

// ----------------------------------------------- media + engine end-to-end

TEST(ImpairmentMedium, DuplicateDeliversFrameTwice) {
  sim::Simulator sim;
  SharedMediumParams mp;
  mp.impairment.duplicate = 1.0;
  mp.impairment.duplicate_delay = milliseconds(1);
  SharedMedium wire(sim, mp);
  auto a = quick_nic(sim, "a", 1);
  auto b = quick_nic(sim, "b", 2);
  a->attach(wire);
  b->attach(wire);
  std::vector<SimTime> arrivals;
  b->set_rx_handler([&](const EthernetFrame&, bool) { arrivals.push_back(sim.now()); });
  a->send(frame_to(*b, 100));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], static_cast<SimTime>(milliseconds(1)));
  EXPECT_TRUE(wire.impairment().conserved());
  EXPECT_EQ(wire.impairment().counters().duplicated, 1u);
  EXPECT_EQ(wire.impairment().counters().delivered, 2u);
}

TEST(ImpairmentMedium, ReorderJitterReordersAtReceiver) {
  sim::Simulator sim;
  SharedMediumParams mp;
  mp.bandwidth_bps = 1'000'000'000'000ull;  // make wire time negligible
  mp.propagation = 0;
  mp.impairment.reorder = 0.5;
  mp.impairment.reorder_delay = milliseconds(5);
  mp.impairment.seed = 11;
  SharedMedium wire(sim, mp);
  auto a = quick_nic(sim, "a", 1);
  auto b = quick_nic(sim, "b", 2);
  a->attach(wire);
  b->attach(wire);
  std::vector<std::uint8_t> order;
  b->set_rx_handler([&](const EthernetFrame& f, bool) { order.push_back(f.payload[0]); });
  for (std::uint8_t i = 0; i < 50; ++i) {
    sim.schedule_after(microseconds(10) * i, [&, i] {
      EthernetFrame f;
      f.dst = b->mac();
      f.payload = Bytes(64, i);
      a->send(std::move(f));
    });
  }
  sim.run();
  ASSERT_EQ(order.size(), 50u);
  bool out_of_order = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order) << "jittered copies arrived in send order";
  EXPECT_GT(wire.impairment().counters().reordered, 0u);
  EXPECT_TRUE(wire.impairment().conserved());
}

TEST(ImpairmentMedium, CorruptedCopyDiffersOnTheWire) {
  sim::Simulator sim;
  SharedMediumParams mp;
  mp.impairment.corrupt = 1.0;
  SharedMedium wire(sim, mp);
  auto a = quick_nic(sim, "a", 1);
  auto b = quick_nic(sim, "b", 2);
  a->attach(wire);
  b->attach(wire);
  Bytes got;
  b->set_rx_handler([&](const EthernetFrame& f, bool) { got = to_bytes(f.payload); });
  a->send(frame_to(*b, 120, 0x77));
  sim.run();
  ASSERT_EQ(got.size(), 120u);
  EXPECT_NE(got, Bytes(120, 0x77));
  EXPECT_EQ(wire.impairment().counters().corrupted, 1u);
}

TEST(ImpairmentMedium, LegacyLossKnobStillConfiguresPipeline) {
  // The pre-pipeline loss_probability/loss_seed pair must keep working as
  // a thin wrapper over the uniform-loss stage.
  sim::Simulator sim;
  SharedMediumParams mp;
  mp.loss_probability = 0.5;
  mp.loss_seed = 7;
  SharedMedium wire(sim, mp);
  EXPECT_TRUE(wire.impairment().enabled());
  EXPECT_DOUBLE_EQ(wire.impairment().params().loss, 0.5);
  EXPECT_EQ(wire.impairment().params().seed, 7u);
  auto a = quick_nic(sim, "a", 1);
  auto b = quick_nic(sim, "b", 2);
  a->attach(wire);
  b->attach(wire);
  int got = 0;
  b->set_rx_handler([&](const EthernetFrame&, bool) { ++got; });
  for (int i = 0; i < 100; ++i) a->send(frame_to(*b, 64));
  sim.run();
  EXPECT_GT(got, 20);
  EXPECT_LT(got, 80);
  EXPECT_EQ(wire.impairment().counters().dropped, 100u - got);
  EXPECT_TRUE(wire.impairment().conserved());
}

// --------------------------------------------- frame-lifetime regressions

TEST(FrameLifetime, SharedMediumSkipsNicDestroyedEarlierInSamePass) {
  // An observer fires synchronously during the delivery pass; destroying a
  // later receiver from it must not hand the in-flight frame to freed
  // memory (the snapshot loop re-checks membership per delivery).
  sim::Simulator sim;
  SharedMedium wire(sim);
  auto a = quick_nic(sim, "a", 1);
  auto b = quick_nic(sim, "b", 2);
  auto c = quick_nic(sim, "c", 3);
  a->attach(wire);
  b->attach(wire);
  c->attach(wire);
  int c_got = 0;
  c->set_rx_handler([&](const EthernetFrame&, bool) { ++c_got; });
  // b is attached before c, so b's delivery happens first in the pass.
  b->add_observer([&](const EthernetFrame&, bool) { c.reset(); });
  EthernetFrame f;
  f.dst = MacAddress::broadcast();
  f.payload = Bytes(64, 1);
  a->send(std::move(f));
  sim.run();
  EXPECT_EQ(c.get(), nullptr);
  EXPECT_EQ(c_got, 0);
  EXPECT_EQ(wire.drops_detached(), 1u);
}

TEST(FrameLifetime, SharedMediumSkipsNicDestroyedWhileCopyDelayed) {
  // A reorder-delayed copy resolves its receiver again at its own delivery
  // time; the receiver dying in between must count as detached, and the
  // engine's conservation identity must still close.
  sim::Simulator sim;
  SharedMediumParams mp;
  mp.impairment.reorder = 1.0;
  mp.impairment.reorder_delay = milliseconds(10);
  SharedMedium wire(sim, mp);
  auto a = quick_nic(sim, "a", 1);
  auto b = quick_nic(sim, "b", 2);
  a->attach(wire);
  b->attach(wire);
  int b_got = 0;
  b->set_rx_handler([&](const EthernetFrame&, bool) { ++b_got; });
  a->send(frame_to(*b, 64));
  // Destroy b after the frame is on the wire but before the delayed copy
  // can land.
  sim.schedule_after(microseconds(100), [&] { b.reset(); });
  sim.run();
  EXPECT_EQ(b_got, 0);
  EXPECT_EQ(wire.drops_detached(), 1u);
  const auto c = wire.impairment().counters();
  EXPECT_EQ(c.detached, 1u);
  EXPECT_EQ(c.delivered, 0u);
  EXPECT_TRUE(wire.impairment().conserved());
}

TEST(FrameLifetime, SharedMediumSurvivesSenderDestroyedInFlight) {
  // The sending NIC dies while its own frame is in flight; per-receiver
  // loss rules must not dereference it.
  sim::Simulator sim;
  SharedMedium wire(sim);
  auto a = quick_nic(sim, "a", 1);
  auto b = quick_nic(sim, "b", 2);
  a->attach(wire);
  b->attach(wire);
  bool loss_fn_saw_delivery = false;
  wire.set_loss_fn([&](const Nic& sender, const Nic&, const EthernetFrame&) {
    loss_fn_saw_delivery = true;
    EXPECT_EQ(sender.name(), "a");  // only ever called with a live sender
    return false;
  });
  int b_got = 0;
  b->set_rx_handler([&](const EthernetFrame&, bool) { ++b_got; });
  a->send(frame_to(*b, 64));
  a.reset();  // destroyed before the scheduled delivery runs
  sim.run();
  // The frame still reaches b (it was on the wire), but the loss rule was
  // bypassed: there is no live sender to evaluate it against.
  EXPECT_EQ(b_got, 1);
  EXPECT_FALSE(loss_fn_saw_delivery);
}

TEST(FrameLifetime, FullDuplexDetachClearsPortBusyState) {
  // Detaching must erase the port's transmit schedule: a NIC re-attached
  // (or a new NIC reusing the allocation) must not inherit deferrals from
  // the old port's queue.
  sim::Simulator sim;
  SharedMediumParams mp;
  mp.half_duplex = false;
  mp.bandwidth_bps = 1'000'000;  // slow: 1st transmit occupies the port long
  SharedMedium wire(sim, mp);
  auto a = quick_nic(sim, "a", 1);
  auto b = quick_nic(sim, "b", 2);
  a->attach(wire);
  b->attach(wire);
  a->send(frame_to(*b, 1400));
  a->detach();
  a->attach(wire);
  a->send(frame_to(*b, 100));  // same instant: must not defer
  sim.run();
  EXPECT_EQ(wire.deferrals(), 0u);
}

TEST(FrameLifetime, PointToPointResolvesPeerAtDeliveryTime) {
  // The far endpoint is destroyed while a frame is crossing the link; the
  // copy must be dropped and counted, not delivered to freed memory.
  sim::Simulator sim;
  PointToPointParams pp;
  pp.propagation = milliseconds(10);
  PointToPointLink link(sim, pp);
  auto a = quick_nic(sim, "a", 1);
  auto b = quick_nic(sim, "b", 2);
  a->attach(link);
  b->attach(link);
  int b_got = 0;
  b->set_rx_handler([&](const EthernetFrame&, bool) { ++b_got; });
  a->send(frame_to(*b, 200));
  sim.schedule_after(milliseconds(1), [&] { b.reset(); });
  sim.run();
  EXPECT_EQ(b_got, 0);
  EXPECT_EQ(link.drops_detached(), 1u);
}

TEST(FrameLifetime, PointToPointConservationWithQueueDropsAndDuplicates) {
  sim::Simulator sim;
  PointToPointParams pp;
  pp.bandwidth_bps = 1'000'000;
  pp.queue_limit = 4;
  pp.impairment.duplicate = 0.5;
  pp.impairment.seed = 17;
  PointToPointLink link(sim, pp);
  auto a = quick_nic(sim, "a", 1);
  auto b = quick_nic(sim, "b", 2);
  a->attach(link);
  b->attach(link);
  int got = 0;
  b->set_rx_handler([&](const EthernetFrame&, bool) { ++got; });
  for (int i = 0; i < 20; ++i) a->send(frame_to(*b, 1000));
  sim.run();
  const auto c = link.impairment().counters();
  EXPECT_GT(link.drops_queue(), 0u);
  EXPECT_EQ(c.delivered, static_cast<std::uint64_t>(got));
  // Queue-overflow copies are settled as `detached` (copies the link could
  // not deliver), so the identity closes even under tail drop.
  EXPECT_TRUE(link.impairment().conserved());
}

}  // namespace
}  // namespace tfo::net
