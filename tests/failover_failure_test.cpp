// Failure handling: §5 (primary fails, secondary takes over the client's
// connections transparently) and §6 (secondary fails, primary continues
// solo). The core property throughout: the client-observed byte stream is
// exactly what an unreplicated server would have produced — no loss, no
// duplication, no reordering, no reset.
#include <gtest/gtest.h>

#include "failover_fixture.hpp"

namespace tfo::core {
namespace {

using test::EchoDriver;
using test::kEchoPort;
using test::make_replicated_lan;
using test::run_until;

TEST(PrimaryFailure, MidTransferIsTransparent) {
  auto r = make_replicated_lan();
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 200 * 1024, 4096);
  // Let roughly half the transfer happen, then crash the primary.
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 100 * 1024; },
                        seconds(120)));
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(120)));
  EXPECT_TRUE(d.verify());
  EXPECT_TRUE(r->group->secondary_bridge().taken_over());
  EXPECT_FALSE(d.close_reason().has_value());  // never reset or torn down
}

TEST(PrimaryFailure, TakeoverClaimsPrimaryAddress) {
  auto r = make_replicated_lan();
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 10000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 2000; }));
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->group->secondary_bridge().taken_over();
  }, seconds(10)));
  r->sim().run_for(milliseconds(100));
  EXPECT_TRUE(r->secondary().ip().is_local(r->primary().address()));
  // The client's ARP entry for a_p now points at the secondary's MAC.
  net::MacAddress m{};
  ASSERT_TRUE(r->client().arp().lookup(r->primary().address(), &m));
  EXPECT_EQ(m, r->secondary().nic().mac());
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(120)));
  EXPECT_TRUE(d.verify());
}

TEST(PrimaryFailure, DuringHandshakeStillConnects) {
  auto r = make_replicated_lan();
  // Crash the primary the instant the client starts connecting: the SYN
  // may or may not have been processed by P. §1: "failover can occur at
  // any time during the lifetime of a connection."
  auto conn = r->client().tcp().connect(r->primary().address(), kEchoPort,
                                        {.nodelay = true});
  r->group->crash_primary();
  Bytes got;
  conn->on_established = [&] { conn->send(to_bytes("after-failover")); };
  conn->on_readable = [&] { conn->recv(got); };
  ASSERT_TRUE(run_until(r->sim(), [&] { return got.size() == 14; }, seconds(120)));
  EXPECT_EQ(to_string(got), "after-failover");
}

TEST(PrimaryFailure, JustAfterEstablishment) {
  auto r = make_replicated_lan();
  auto conn = r->client().tcp().connect(r->primary().address(), kEchoPort,
                                        {.nodelay = true});
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return conn->state() == tcp::TcpState::kEstablished;
  }));
  r->group->crash_primary();
  Bytes got;
  conn->on_readable = [&] { conn->recv(got); };
  conn->send(to_bytes("hello-secondary"));
  ASSERT_TRUE(run_until(r->sim(), [&] { return got.size() == 15; }, seconds(120)));
  EXPECT_EQ(to_string(got), "hello-secondary");
}

TEST(PrimaryFailure, NewConnectionsServedAfterTakeover) {
  auto r = make_replicated_lan();
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->group->secondary_bridge().taken_over();
  }, seconds(10)));
  r->sim().run_for(milliseconds(50));
  // A brand-new client connection to a_p lands on the secondary.
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 5000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(60)));
  EXPECT_TRUE(d.verify());
}

TEST(PrimaryFailure, CloseAfterFailoverCompletes) {
  auto r = make_replicated_lan();
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 20000, 2000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 4000; }));
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(120)));
  EXPECT_TRUE(d.verify());
  d.connection().close();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return d.connection().state() == tcp::TcpState::kClosed;
  }, seconds(60)));
  EXPECT_EQ(d.close_reason(), tcp::CloseReason::kGraceful);
}

TEST(PrimaryFailure, ClientStallBoundedByDetectionAndRetransmission) {
  core::FailoverConfig cfg;
  cfg.heartbeat_period = milliseconds(5);
  cfg.failure_timeout = milliseconds(25);
  auto r = make_replicated_lan({}, cfg);
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 500 * 1024, 8192);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 50 * 1024; },
                        seconds(120)));
  const SimTime crash_at = r->sim().now();
  r->group->crash_primary();
  const std::size_t at_crash = d.received().size();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > at_crash; },
                        seconds(120)));
  const SimDuration stall = static_cast<SimDuration>(r->sim().now() - crash_at);
  // Stall ≈ detection timeout + one retransmission cycle; generously
  // bounded here, measured precisely in the failover-time bench.
  EXPECT_LT(stall, seconds(5));
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)));
  EXPECT_TRUE(d.verify());
}

// Failover at many byte positions: the §1 "any time during the lifetime"
// claim as a property test.
class PrimaryFailureSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrimaryFailureSweep, TransparentAtAnyPoint) {
  auto r = make_replicated_lan();
  const std::size_t total = 64 * 1024;
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, total, 2048);
  const std::size_t fail_after = GetParam();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() >= fail_after; },
                        seconds(120)));
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)))
      << "stalled at " << d.received().size() << " of " << total;
  EXPECT_TRUE(d.verify());
}

INSTANTIATE_TEST_SUITE_P(BytePositions, PrimaryFailureSweep,
                         ::testing::Values(0, 1, 100, 2048, 4096, 10000, 20000,
                                           32768, 50000, 63000));

// ------------------------------------------------------------- secondary

TEST(SecondaryFailure, MidTransferIsTransparent) {
  auto r = make_replicated_lan();
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 200 * 1024, 4096);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 100 * 1024; },
                        seconds(120)));
  r->group->crash_secondary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(120)));
  EXPECT_TRUE(d.verify());
  EXPECT_TRUE(r->group->primary_bridge().secondary_failed());
  EXPECT_FALSE(d.close_reason().has_value());
}

TEST(SecondaryFailure, PrimaryQueueIsFlushed) {
  // §6 step 1: bytes waiting in the primary output queue for the (now
  // dead) secondary's copies must be sent to the client immediately.
  auto r = make_replicated_lan();
  // Slow the secondary's reply path so the primary queue is non-empty:
  // secondary delays ACKs and has a smaller MSS (more segments).
  r->secondary().tcp().mutable_params().delayed_ack = milliseconds(300);
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 100 * 1024, 8192);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 30 * 1024; },
                        seconds(120)));
  r->group->crash_secondary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(120)));
  EXPECT_TRUE(d.verify());
}

TEST(SecondaryFailure, SequenceOffsetStillCompensated) {
  // §6 step 3: after the secondary fails, the primary bridge must keep
  // subtracting Δseq forever — the client is locked to S's sequence
  // space. Detectable by the transfer simply continuing to work with
  // wildly different ISNs.
  auto r = make_replicated_lan();
  r->primary().tcp().set_next_isn(0xf0000000);
  r->secondary().tcp().set_next_isn(0x10000000);
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 50 * 1024, 2048);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 10 * 1024; }));
  r->group->crash_secondary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(120)));
  EXPECT_TRUE(d.verify());
}

TEST(SecondaryFailure, DuringHandshake) {
  auto r = make_replicated_lan();
  auto conn = r->client().tcp().connect(r->primary().address(), kEchoPort,
                                        {.nodelay = true});
  r->group->crash_secondary();
  Bytes got;
  conn->on_established = [&] { conn->send(to_bytes("solo")); };
  conn->on_readable = [&] { conn->recv(got); };
  ASSERT_TRUE(run_until(r->sim(), [&] { return got.size() == 4; }, seconds(120)));
  EXPECT_EQ(to_string(got), "solo");
}

TEST(SecondaryFailure, CloseCompletesInSoloMode) {
  auto r = make_replicated_lan();
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 10000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 3000; }));
  r->group->crash_secondary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(60)));
  d.connection().close();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return d.connection().state() == tcp::TcpState::kClosed;
  }, seconds(60)));
  EXPECT_EQ(d.close_reason(), tcp::CloseReason::kGraceful);
}

class SecondaryFailureSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SecondaryFailureSweep, TransparentAtAnyPoint) {
  auto r = make_replicated_lan();
  const std::size_t total = 64 * 1024;
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, total, 2048);
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return d.received().size() >= GetParam();
  }, seconds(120)));
  r->group->crash_secondary();
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)))
      << "stalled at " << d.received().size() << " of " << total;
  EXPECT_TRUE(d.verify());
}

INSTANTIATE_TEST_SUITE_P(BytePositions, SecondaryFailureSweep,
                         ::testing::Values(0, 1, 100, 2048, 4096, 10000, 20000,
                                           32768, 50000, 63000));

TEST(Failover, TakeoverPauseDelaysResumption) {
  core::FailoverConfig cfg;
  cfg.takeover_pause = milliseconds(200);
  auto r = make_replicated_lan({}, cfg);
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 50000, 2000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.received().size() > 10000; }));
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->group->secondary_bridge().taken_over();
  }, seconds(10)));
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(240)));
  EXPECT_TRUE(d.verify());
}

TEST(Failover, MultipleConnectionsSurvivePrimaryFailure) {
  auto r = make_replicated_lan();
  std::vector<std::unique_ptr<EchoDriver>> drivers;
  for (int i = 0; i < 5; ++i) {
    drivers.push_back(std::make_unique<EchoDriver>(
        r->client(), r->primary().address(), kEchoPort, 40000, 2000));
  }
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return drivers[0]->received().size() > 10000;
  }, seconds(120)));
  r->group->crash_primary();
  ASSERT_TRUE(run_until(r->sim(), [&] {
    for (auto& d : drivers) {
      if (!d->done()) return false;
    }
    return true;
  }, seconds(300)));
  for (auto& d : drivers) EXPECT_TRUE(d->verify());
}

}  // namespace
}  // namespace tfo::core
