// Fault-free operation of the failover bridge (§3 and §7/§8): replicated
// handshake, merged data transfer, ACK/window minimum selection, sequence
// synchronization, and connection termination.
#include <gtest/gtest.h>

#include "failover_fixture.hpp"
#include "test_util.hpp"

namespace tfo::core {
namespace {

using test::EchoDriver;
using test::kEchoPort;
using test::make_replicated_lan;
using test::run_until;

TEST(FailoverBasic, HandshakeEstablishesOnBothReplicas) {
  auto r = make_replicated_lan();
  auto conn = r->client().tcp().connect(r->primary().address(), kEchoPort);
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return conn->state() == tcp::TcpState::kEstablished;
  }));
  // Both replicas hold an ESTABLISHED connection for this client.
  const tcp::ConnKey pk{r->primary().address(), kEchoPort,
                        r->client().address(), conn->key().local_port};
  const tcp::ConnKey sk{r->secondary().address(), kEchoPort,
                        r->client().address(), conn->key().local_port};
  r->sim().run_for(milliseconds(50));
  auto pc = r->primary().tcp().find(pk);
  auto sc = r->secondary().tcp().find(sk);
  ASSERT_NE(pc, nullptr);
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(pc->state(), tcp::TcpState::kEstablished);
  EXPECT_EQ(sc->state(), tcp::TcpState::kEstablished);
  EXPECT_EQ(r->group->primary_bridge().connection_count(), 1u);
}

TEST(FailoverBasic, ClientSeesSecondarySequenceSpace) {
  auto r = make_replicated_lan();
  // Force distinguishable ISNs.
  r->primary().tcp().set_next_isn(1000000);
  r->secondary().tcp().set_next_isn(5000000);
  auto conn = r->client().tcp().connect(r->primary().address(), kEchoPort);
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return conn->state() == tcp::TcpState::kEstablished;
  }));
  conn->send(to_bytes("hello"));
  Bytes got;
  conn->on_readable = [&] { conn->recv(got); };
  ASSERT_TRUE(run_until(r->sim(), [&] { return got.size() == 5; }));
  EXPECT_EQ(to_string(got), "hello");
  // §3.3: the client's connection is synchronized to S's sequence numbers.
  const tcp::ConnKey sk{r->secondary().address(), kEchoPort,
                        r->client().address(), conn->key().local_port};
  auto sc = r->secondary().tcp().find(sk);
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(conn->bytes_received_total(), sc->bytes_sent_total());
}

TEST(FailoverBasic, EchoRoundTripSmall) {
  auto r = make_replicated_lan();
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 64, 64);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }));
  EXPECT_TRUE(d.verify());
  // Both replicas processed the same request.
  EXPECT_EQ(r->echo_p->bytes_echoed(), 64u);
  EXPECT_EQ(r->echo_s->bytes_echoed(), 64u);
}

TEST(FailoverBasic, EchoLargeStream) {
  auto r = make_replicated_lan();
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 300 * 1024, 8192);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(300)));
  EXPECT_TRUE(d.verify());
  EXPECT_EQ(r->echo_p->bytes_echoed(), 300u * 1024);
  EXPECT_EQ(r->echo_s->bytes_echoed(), 300u * 1024);
}

TEST(FailoverBasic, MergedSynUsesMinimumMss) {
  apps::LanParams lp;
  auto r = make_replicated_lan(lp);
  r->secondary().tcp().mutable_params().mss = 700;  // asymmetric replicas
  auto conn = r->client().tcp().connect(r->primary().address(), kEchoPort);
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return conn->state() == tcp::TcpState::kEstablished;
  }));
  EXPECT_EQ(conn->effective_mss(), 700u);
}

TEST(FailoverBasic, DifferentReplicaSegmentationStillMerges) {
  // §3.2: "one of the server's TCP layer might split the reply into
  // multiple TCP segments, whereas the other ... might pack the entire
  // reply into a single segment." Different MSS values force exactly
  // that; the byte-granular merge must still produce a correct stream.
  auto r = make_replicated_lan();
  r->secondary().tcp().mutable_params().mss = 536;
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 64 * 1024, 4096);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(120)));
  EXPECT_TRUE(d.verify());
}

TEST(FailoverBasic, PrimaryNeverAcksBeyondSecondary) {
  // Requirement 2 (§2): the primary must not acknowledge a client segment
  // until the secondary has acknowledged it. With the secondary's ACKs
  // observable at the bridge, the client-visible ACK is the minimum.
  auto r = make_replicated_lan();
  // Slow the secondary's delayed-ACK down so its ACKs lag.
  r->secondary().tcp().mutable_params().delayed_ack = milliseconds(400);

  auto conn = r->client().tcp().connect(r->primary().address(), kEchoPort,
                                        {.nodelay = true});
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return conn->state() == tcp::TcpState::kEstablished;
  }));
  const tcp::ConnKey sk{r->secondary().address(), kEchoPort,
                        r->client().address(), conn->key().local_port};

  conn->send(test::pattern_bytes(100, 1));
  // Whenever the client's data is fully acknowledged, the secondary must
  // have received all of it.
  bool checked = false;
  ASSERT_TRUE(run_until(r->sim(), [&] {
    auto sc = r->secondary().tcp().find(sk);
    if (conn->send_buffer_used() == 0 && conn->bytes_sent_total() == 100) {
      if (sc) {
        EXPECT_EQ(sc->bytes_received_total(), 100u);
      }
      checked = true;
      return true;
    }
    return false;
  }, seconds(30)));
  EXPECT_TRUE(checked);
}

TEST(FailoverBasic, WindowIsMinimumOfReplicas) {
  apps::LanParams lp;
  auto r = make_replicated_lan(lp, {}, /*with_echo=*/false);
  // Secondary has a tiny receive buffer and a non-reading app.
  r->secondary().tcp().mutable_params().recv_buf = 2048;
  std::shared_ptr<tcp::Connection> sp, ss;
  r->primary().tcp().listen(kEchoPort, [&](auto c) { sp = c; });
  r->secondary().tcp().listen(kEchoPort, [&](auto c) { ss = c; });

  auto conn = r->client().tcp().connect(r->primary().address(), kEchoPort);
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return conn->state() == tcp::TcpState::kEstablished && sp && ss;
  }));
  // Client pushes more than the secondary's buffer; since neither app
  // reads, transmission must stall near the *smaller* buffer size.
  conn->send(test::pattern_bytes(32 * 1024, 3));
  r->sim().run_for(seconds(5));
  EXPECT_LE(conn->bytes_sent_total(), 2048u + 1500u);
  EXPECT_GE(conn->bytes_sent_total(), 1000u);
}

TEST(FailoverBasic, ClientInitiatedCloseCompletesFourWay) {
  auto r = make_replicated_lan();
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 1024, 1024);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }));
  d.connection().close();
  // EchoServer closes in response on both replicas; the client must reach
  // a fully closed state (TIME_WAIT then CLOSED).
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return d.connection().state() == tcp::TcpState::kClosed;
  }, seconds(60)));
  EXPECT_EQ(d.close_reason(), tcp::CloseReason::kGraceful);
  // Bridge state is eventually torn down (§8).
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->group->primary_bridge().connection_count() == 0;
  }, seconds(30)));
  // And both replicas' TCP connections are gone.
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->primary().tcp().connection_count() == 0 &&
           r->secondary().tcp().connection_count() == 0;
  }, seconds(30)));
}

TEST(FailoverBasic, ServerInitiatedCloseCompletes) {
  auto r = make_replicated_lan({}, {}, /*with_echo=*/false);
  // Servers that send a fixed reply then close.
  std::vector<std::shared_ptr<tcp::Connection>> held;
  auto serve = [&](apps::Host& h) {
    h.tcp().listen(kEchoPort, [&held](std::shared_ptr<tcp::Connection> c) {
      held.push_back(c);
      c->send(to_bytes("goodbye"));
      c->close();
    });
  };
  serve(r->primary());
  serve(r->secondary());

  auto conn = r->client().tcp().connect(r->primary().address(), kEchoPort);
  Bytes got;
  bool peer_closed = false;
  conn->on_readable = [&] { conn->recv(got); };
  conn->on_peer_fin = [&] {
    peer_closed = true;
    conn->close();
  };
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return peer_closed && got.size() == 7 &&
           conn->state() == tcp::TcpState::kClosed;
  }, seconds(60)));
  EXPECT_EQ(to_string(got), "goodbye");
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return r->group->primary_bridge().connection_count() == 0;
  }, seconds(30)));
}

TEST(FailoverBasic, HalfCloseServerKeepsSending) {
  // §8: after the client's FIN the server side may keep transmitting; the
  // bridge keeps merging in the half-closed state.
  auto r = make_replicated_lan({}, {}, /*with_echo=*/false);
  const Bytes big = apps::deterministic_payload(100 * 1024, 9);
  std::vector<std::shared_ptr<tcp::Connection>> held;
  auto serve = [&](apps::Host& h) {
    h.tcp().listen(kEchoPort, [&held, &big](std::shared_ptr<tcp::Connection> c) {
      held.push_back(c);
      auto* raw = c.get();
      raw->on_peer_fin = [raw, &big] {
        raw->send(big);
        raw->close();
      };
    });
  };
  serve(r->primary());
  serve(r->secondary());

  auto conn = r->client().tcp().connect(r->primary().address(), kEchoPort);
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return conn->state() == tcp::TcpState::kEstablished;
  }));
  conn->close();  // half-close: client->server direction shuts down
  Bytes got;
  conn->on_readable = [&] { conn->recv(got); };
  ASSERT_TRUE(run_until(r->sim(), [&] { return got.size() == big.size(); },
                        seconds(120)));
  EXPECT_EQ(got, big);
  ASSERT_TRUE(run_until(r->sim(), [&] {
    return conn->state() == tcp::TcpState::kClosed;
  }, seconds(60)));
}

TEST(FailoverBasic, MultipleConcurrentConnections) {
  auto r = make_replicated_lan();
  std::vector<std::unique_ptr<EchoDriver>> drivers;
  for (int i = 0; i < 8; ++i) {
    drivers.push_back(std::make_unique<EchoDriver>(
        r->client(), r->primary().address(), kEchoPort, 20000, 2000));
  }
  ASSERT_TRUE(run_until(r->sim(), [&] {
    for (auto& d : drivers) {
      if (!d->done()) return false;
    }
    return true;
  }, seconds(300)));
  for (auto& d : drivers) EXPECT_TRUE(d->verify());
  EXPECT_EQ(r->group->primary_bridge().connection_count(), 8u);
}

TEST(FailoverBasic, NonFailoverPortBypassesBridge) {
  auto r = make_replicated_lan();
  apps::EchoServer plain(r->primary().tcp(), 9999);  // not in the port set
  auto conn = r->client().tcp().connect(r->primary().address(), 9999);
  Bytes got;
  conn->on_readable = [&] { conn->recv(got); };
  conn->on_established = [&] { conn->send(to_bytes("plain")); };
  ASSERT_TRUE(run_until(r->sim(), [&] { return got.size() == 5; }));
  EXPECT_EQ(r->group->primary_bridge().connection_count(), 0u);
  EXPECT_EQ(r->group->primary_bridge().merged_segments_sent(), 0u);
}

TEST(FailoverBasic, SocketOptionMethodMarksConnection) {
  // §7 method 1: no port configured; both replicas open their listener
  // with the failover socket option instead.
  core::FailoverConfig cfg;
  cfg.ports = {1};  // dummy so the fixture doesn't install the echo port
  auto r = make_replicated_lan({}, cfg, /*with_echo=*/false);
  apps::EchoServer ep(r->primary().tcp(), 8080, {.failover = true});
  apps::EchoServer es(r->secondary().tcp(), 8080, {.failover = true});
  EchoDriver d(r->client(), r->primary().address(), 8080, 50000, 5000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }, seconds(120)));
  EXPECT_TRUE(d.verify());
  EXPECT_EQ(ep.bytes_echoed(), 50000u);
  EXPECT_EQ(es.bytes_echoed(), 50000u);
  EXPECT_GT(r->group->primary_bridge().merged_segments_sent(), 0u);
}

TEST(FailoverBasic, SecondarySnoopsViaPromiscuousMode) {
  auto r = make_replicated_lan();
  EXPECT_TRUE(r->secondary().nic().promiscuous());
  EchoDriver d(r->client(), r->primary().address(), kEchoPort, 1000, 1000);
  ASSERT_TRUE(run_until(r->sim(), [&] { return d.done(); }));
  EXPECT_GT(r->group->secondary_bridge().datagrams_translated(), 0u);
  EXPECT_GT(r->group->secondary_bridge().segments_diverted(), 0u);
}

}  // namespace
}  // namespace tfo::core
