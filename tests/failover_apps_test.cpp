// End-to-end failover with real applications: the deterministic web store
// (the paper's §1 motivating example), active-mode FTP (the §9 real-world
// application, including §7.2 server-initiated data connections), a
// multi-tier topology with an unreplicated back-end, and failover across
// a WAN/router (where IP takeover must flip the router's ARP table).
#include <gtest/gtest.h>

#include "apps/ftp.hpp"
#include "apps/store.hpp"
#include "core/replica_group.hpp"
#include "failover_fixture.hpp"

namespace tfo::core {
namespace {

using test::run_until;

// ----------------------------------------------------------------- store

struct StoreFailover : ::testing::Test {
  std::unique_ptr<apps::Lan> lan = apps::make_lan();
  std::unique_ptr<ReplicaGroup> group;
  std::unique_ptr<apps::StoreServer> store_p, store_s;

  void build() {
    FailoverConfig cfg;
    cfg.ports = {8000};
    group = std::make_unique<ReplicaGroup>(*lan->primary, *lan->secondary, cfg);
    store_p = std::make_unique<apps::StoreServer>(lan->primary->tcp(), 8000);
    store_s = std::make_unique<apps::StoreServer>(lan->secondary->tcp(), 8000);
    group->start();
  }
};

TEST_F(StoreFailover, SessionSurvivesPrimaryCrashMidShopping) {
  build();
  apps::StoreClient client(lan->client->tcp(), lan->primary->address(), 8000);
  client.request("BROWSE grinder");
  client.request("BUY grinder 1");
  ASSERT_TRUE(run_until(lan->sim, [&] { return client.replies().size() >= 2; }));
  EXPECT_EQ(client.replies()[1], "OK 1 8999");

  group->crash_primary();
  // Continue the same session: order counter and stock view persist.
  client.request("BUY grinder 2");
  client.request("BROWSE grinder");
  ASSERT_TRUE(run_until(lan->sim, [&] { return client.replies().size() >= 4; },
                        seconds(120)));
  EXPECT_EQ(client.replies()[2], "OK 2 17998");
  EXPECT_EQ(client.replies()[3], "ITEM grinder 8999 37");
  EXPECT_FALSE(client.closed());
}

TEST_F(StoreFailover, SessionSurvivesSecondaryCrash) {
  build();
  apps::StoreClient client(lan->client->tcp(), lan->primary->address(), 8000);
  client.request("BUY kettle 5");
  ASSERT_TRUE(run_until(lan->sim, [&] { return client.replies().size() >= 1; }));
  group->crash_secondary();
  client.request("BROWSE kettle");
  ASSERT_TRUE(run_until(lan->sim, [&] { return client.replies().size() >= 2; },
                        seconds(120)));
  EXPECT_EQ(client.replies()[1], "ITEM kettle 3499 95");
}

TEST_F(StoreFailover, ReplicasStayByteIdentical) {
  build();
  apps::StoreClient client(lan->client->tcp(), lan->primary->address(), 8000);
  for (int i = 0; i < 10; ++i) {
    client.request("BUY filter-papers 3");
    client.request("LIST");
  }
  ASSERT_TRUE(run_until(lan->sim, [&] { return client.replies().size() >= 70; },
                        seconds(120)));
  EXPECT_EQ(store_p->orders_placed(), 10u);
  EXPECT_EQ(store_s->orders_placed(), 10u);
  EXPECT_EQ(store_p->requests_served(), store_s->requests_served());
  EXPECT_EQ(group->primary_bridge().divergences(), 0u);
}

// ------------------------------------------------------------------- ftp

struct FtpFailover : ::testing::Test {
  std::unique_ptr<apps::Lan> lan = apps::make_lan();
  std::unique_ptr<ReplicaGroup> group;
  std::unique_ptr<apps::FtpServer> ftp_p, ftp_s;
  std::unique_ptr<apps::FtpClient> client;

  void build() {
    FailoverConfig cfg;
    cfg.ports = {21, 20};  // control and (server-initiated) data connections
    group = std::make_unique<ReplicaGroup>(*lan->primary, *lan->secondary, cfg);
    ftp_p = std::make_unique<apps::FtpServer>(lan->primary->tcp());
    ftp_s = std::make_unique<apps::FtpServer>(lan->secondary->tcp());
    const Bytes big = apps::deterministic_payload(400 * 1024, 5);
    for (auto* s : {ftp_p.get(), ftp_s.get()}) {
      s->add_file("small.txt", to_bytes("replicated file content"));
      s->add_file("big.bin", big);
    }
    group->start();
    client = std::make_unique<apps::FtpClient>(lan->client->tcp(),
                                               lan->primary->address());
  }

  bool login() {
    bool ok = false, done = false;
    client->login([&](bool r) {
      ok = r;
      done = true;
    });
    return run_until(lan->sim, [&] { return done; }, seconds(60)) && ok;
  }
};

TEST_F(FtpFailover, ReplicatedGetUsesServerInitiatedConnection) {
  build();
  ASSERT_TRUE(login());
  Bytes content;
  bool done = false;
  client->get("small.txt", [&](bool ok, Bytes b) {
    EXPECT_TRUE(ok);
    content = std::move(b);
    done = true;
  });
  ASSERT_TRUE(run_until(lan->sim, [&] { return done; }, seconds(120)));
  EXPECT_EQ(to_string(content), "replicated file content");
  // Both replicas ran the transfer; the bridge merged two data conns.
  EXPECT_EQ(ftp_p->transfers_completed(), 1u);
  EXPECT_EQ(ftp_s->transfers_completed(), 1u);
  // Control (client-initiated) + data (server-initiated) both bridged.
  EXPECT_GE(group->primary_bridge().merged_segments_sent(), 4u);
}

TEST_F(FtpFailover, GetSurvivesPrimaryCrashMidTransfer) {
  build();
  ASSERT_TRUE(login());
  Bytes content;
  bool done = false;
  client->get("big.bin", [&](bool ok, Bytes b) {
    EXPECT_TRUE(ok);
    content = std::move(b);
    done = true;
  });
  // Crash the primary partway through the data transfer.
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return lan->client->tcp().connection_count() >= 2;  // ctrl + data live
  }, seconds(60)));
  lan->sim.run_for(milliseconds(30));
  group->crash_primary();
  ASSERT_TRUE(run_until(lan->sim, [&] { return done; }, seconds(300)));
  EXPECT_EQ(content, apps::deterministic_payload(400 * 1024, 5));
}

TEST_F(FtpFailover, PutSurvivesSecondaryCrashMidTransfer) {
  build();
  ASSERT_TRUE(login());
  const Bytes payload = apps::deterministic_payload(300 * 1024, 6);
  bool done = false, ok = false;
  client->put("upload.bin", payload, [&](bool r) {
    ok = r;
    done = true;
  });
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return lan->client->tcp().connection_count() >= 2;
  }, seconds(60)));
  lan->sim.run_for(milliseconds(20));
  group->crash_secondary();
  ASSERT_TRUE(run_until(lan->sim, [&] { return done; }, seconds(300)));
  EXPECT_TRUE(ok);
  ASSERT_TRUE(ftp_p->files().contains("upload.bin"));
  EXPECT_EQ(ftp_p->files().at("upload.bin"), payload);
}

TEST_F(FtpFailover, SequentialTransfersAfterFailover) {
  build();
  ASSERT_TRUE(login());
  Bytes first;
  bool first_done = false;
  client->get("small.txt", [&](bool, Bytes b) {
    first = std::move(b);
    first_done = true;
  });
  ASSERT_TRUE(run_until(lan->sim, [&] { return first_done; }, seconds(120)));
  group->crash_primary();
  ASSERT_TRUE(run_until(lan->sim, [&] {
    return group->secondary_bridge().taken_over();
  }, seconds(10)));
  // New data connection after takeover: the survivor serves it alone.
  Bytes second;
  bool second_done = false;
  client->get("big.bin", [&](bool ok2, Bytes b) {
    EXPECT_TRUE(ok2);
    second = std::move(b);
    second_done = true;
  });
  ASSERT_TRUE(run_until(lan->sim, [&] { return second_done; }, seconds(300)));
  EXPECT_EQ(to_string(first), "replicated file content");
  EXPECT_EQ(second, apps::deterministic_payload(400 * 1024, 5));
}

// -------------------------------------------------------- multi-tier §7.2

TEST(MultiTier, ReplicatedServerConnectsToUnreplicatedBackend) {
  // The paper's §7.2 scenario: the replicated application is the TCP
  // *client* toward an unreplicated back-end T. Both replicas connect;
  // the bridge merges their SYNs and T sees a single client.
  apps::LanParams lp;
  lp.with_backend = true;
  auto lan = apps::make_lan(lp);
  FailoverConfig cfg;
  cfg.ports = {9100};  // the replicas connect *from* this local port
  ReplicaGroup group(*lan->primary, *lan->secondary, cfg);
  apps::EchoServer backend(lan->backend->tcp(), 5432);
  group.start();

  // Replicated "application": each replica sends a query to the backend
  // and stores the reply.
  Bytes reply_p, reply_s;
  auto run_replica = [&](apps::Host& h, Bytes& reply) {
    auto conn = h.tcp().connect(lan->backend->address(), 5432, {.nodelay = true}, 9100);
    // Raw captures: a connection's own callback holding its shared_ptr is
    // an ownership cycle (the callbacks are never cleared), which leaks
    // the connection. The local shared_ptr keeps it alive for the test.
    conn->on_established = [c = conn.get()] { c->send(to_bytes("SELECT 42")); };
    conn->on_readable = [c = conn.get(), &reply] { c->recv(reply); };
    return conn;
  };
  auto cp = run_replica(*lan->primary, reply_p);
  auto cs = run_replica(*lan->secondary, reply_s);
  ASSERT_TRUE(test::run_until(lan->sim, [&] {
    return reply_p.size() == 9 && reply_s.size() == 9;
  }, seconds(60)));
  EXPECT_EQ(to_string(reply_p), "SELECT 42");
  EXPECT_EQ(to_string(reply_s), "SELECT 42");
  // The backend saw exactly one client connection.
  EXPECT_EQ(backend.live_sessions(), 1u);
  EXPECT_EQ(backend.bytes_echoed(), 9u);
}

TEST(MultiTier, BackendSessionSurvivesPrimaryCrash) {
  apps::LanParams lp;
  lp.with_backend = true;
  auto lan = apps::make_lan(lp);
  FailoverConfig cfg;
  cfg.ports = {9100};
  ReplicaGroup group(*lan->primary, *lan->secondary, cfg);
  apps::EchoServer backend(lan->backend->tcp(), 5432);
  group.start();

  Bytes reply_p, reply_s;
  auto cp = lan->primary->tcp().connect(lan->backend->address(), 5432,
                                        {.nodelay = true}, 9100);
  auto cs = lan->secondary->tcp().connect(lan->backend->address(), 5432,
                                          {.nodelay = true}, 9100);
  // Raw captures: see ReplicatedServerConnectsToUnreplicatedBackend — a
  // shared_ptr self-capture cycle leaks the crashed primary's connection.
  cp->on_established = [c = cp.get()] { c->send(to_bytes("q1")); };
  cs->on_established = [c = cs.get()] { c->send(to_bytes("q1")); };
  cp->on_readable = [c = cp.get(), &reply_p] { c->recv(reply_p); };
  cs->on_readable = [c = cs.get(), &reply_s] { c->recv(reply_s); };
  ASSERT_TRUE(test::run_until(lan->sim, [&] {
    return reply_p.size() == 2 && reply_s.size() == 2;
  }, seconds(60)));

  group.crash_primary();
  ASSERT_TRUE(test::run_until(lan->sim, [&] {
    return group.secondary_bridge().taken_over();
  }, seconds(10)));
  // The surviving replica keeps the backend session.
  cs->send(to_bytes("q2-after-failover"));
  ASSERT_TRUE(test::run_until(lan->sim, [&] { return reply_s.size() == 19; },
                              seconds(120)));
  EXPECT_EQ(to_string(reply_s).substr(2), "q2-after-failover");
  EXPECT_EQ(backend.live_sessions(), 1u);
}

// -------------------------------------------------------------------- wan

TEST(WanFailover, TakeoverFlipsRouterArpAndClientContinues) {
  apps::WanParams wp;
  wp.wan_link.propagation = milliseconds(10);
  auto wan = apps::make_wan(wp);
  FailoverConfig cfg;
  cfg.ports = {test::kEchoPort};
  ReplicaGroup group(*wan->primary, *wan->secondary, cfg);
  apps::EchoServer ep(wan->primary->tcp(), test::kEchoPort);
  apps::EchoServer es(wan->secondary->tcp(), test::kEchoPort);
  group.start();

  test::EchoDriver d(*wan->client, wan->primary->address(), test::kEchoPort,
                     100 * 1024, 4096);
  ASSERT_TRUE(test::run_until(wan->sim, [&] {
    return d.received().size() > 30 * 1024;
  }, seconds(300)));
  group.crash_primary();
  ASSERT_TRUE(test::run_until(wan->sim, [&] { return d.done(); }, seconds(600)));
  EXPECT_TRUE(d.verify());
  // The router's LAN-side ARP entry for a_p now names the secondary.
  net::MacAddress m{};
  ASSERT_TRUE(wan->router->arp(0).lookup(wan->primary->address(), &m));
  EXPECT_EQ(m, wan->secondary->nic().mac());
}

// Runs a WAN transfer with a primary crash in the middle and returns the
// total completion time (the §5 interval T shows up here).
SimTime wan_failover_completion(SimDuration router_update_latency) {
  apps::WanParams wp;
  wp.router_arp.update_latency = router_update_latency;
  auto wan = apps::make_wan(wp);
  FailoverConfig cfg;
  cfg.ports = {test::kEchoPort};
  ReplicaGroup group(*wan->primary, *wan->secondary, cfg);
  apps::EchoServer ep(wan->primary->tcp(), test::kEchoPort);
  apps::EchoServer es(wan->secondary->tcp(), test::kEchoPort);
  group.start();

  test::EchoDriver d(*wan->client, wan->primary->address(), test::kEchoPort,
                     60 * 1024, 4096);
  EXPECT_TRUE(test::run_until(wan->sim, [&] {
    return d.received().size() > 20 * 1024;
  }, seconds(300)));
  group.crash_primary();
  EXPECT_TRUE(test::run_until(wan->sim, [&] { return d.done(); }, seconds(600)));
  EXPECT_TRUE(d.verify());
  return wan->sim.now();
}

TEST(WanFailover, SlowRouterArpUpdateStretchesOutage) {
  // §5's interval T: client→server segments forwarded before the router
  // updates its ARP table are lost and must be retransmitted. T is hidden
  // while it is smaller than the natural recovery window (detection +
  // retransmission), and adds directly to the outage beyond that.
  const SimTime fast = wan_failover_completion(0);
  const SimTime hidden = wan_failover_completion(milliseconds(100));
  const SimTime slow = wan_failover_completion(seconds(1));
  EXPECT_LT(hidden, fast + static_cast<SimTime>(milliseconds(100)));
  EXPECT_GT(slow, fast + static_cast<SimTime>(milliseconds(500)));
  EXPECT_LT(slow, fast + static_cast<SimTime>(seconds(10)));
}

}  // namespace
}  // namespace tfo::core
